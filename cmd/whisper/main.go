// Command whisper runs a single Whisper attack on a chosen CPU model and
// prints what leaked. It is the interactive front door to the library; the
// full evaluation lives in cmd/tetbench. With -all, every attack family runs
// as one scheduler job on its own machine (seeded per attack name), so the
// combined output is byte-identical at any -parallel setting. With -remote,
// the request is served by a whisperd daemon instead of executed locally —
// same bytes, possibly from the daemon's content-addressed cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"whisper/internal/cli"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/experiments"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/server"
	"whisper/internal/server/client"
	"whisper/internal/smt"
	"whisper/internal/stats"
	"whisper/internal/trace"
)

func main() {
	var (
		attack   = flag.String("attack", "md", "attack: cc|md|zbl|rsb|v1|kaslr|smt")
		all      = flag.Bool("all", false, "run every attack family (ignores -attack)")
		cpuName  = flag.String("cpu", "Kaby Lake", "CPU model (microarchitecture or full name)")
		secret   = flag.String("secret", "squeamish ossifrage", "victim secret to plant and leak")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		parallel = flag.Int("parallel", 0, "sched workers for -all (<=0: GOMAXPROCS); output is identical at any setting")
		kpti     = flag.Bool("kpti", false, "enable KPTI")
		flare    = flag.Bool("flare", false, "enable FLARE")
		docker   = flag.Bool("docker", false, "run the attacker inside a container")
		showWin  = flag.Bool("trace", false, "after the attack, render one probe's pipeline diagram")
		remote   = flag.String("remote", "", "serve the request from the whisperd daemon at this address instead of executing locally")

		logLevel   = flag.String("log-level", "warn", "minimum level for structured client/daemon events on stderr: debug, info, warn, error")
		logFormat  = flag.String("log-format", logging.FormatText, "structured event format: text or json")
		traceOut   = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the run to this file")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot to this file (.json JSON, .prom Prometheus, else text)")
	)
	flag.Parse()

	model, ok := server.ModelByName(*cpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "whisper: unknown CPU %q; options:\n", *cpuName)
		for _, m := range cpu.AllModels() {
			fmt.Fprintf(os.Stderr, "  %q (%s)\n", m.Microarch, m.Name)
		}
		os.Exit(2)
	}
	cfg := kernel.Config{KASLR: true, KPTI: *kpti, FLARE: *flare, Docker: *docker}

	if *remote != "" {
		ctx, stop := cli.SignalContext(context.Background())
		defer stop()
		log, err := logging.New(logging.Options{Level: *logLevel, Format: *logFormat, Output: os.Stderr})
		if err != nil {
			fatal(err)
		}
		req := server.Request{
			Experiment: "attacks",
			Seed:       *seed,
			CPU:        *cpuName,
			Secret:     *secret,
			KPTI:       *kpti, FLARE: *flare, Docker: *docker,
		}
		if !*all {
			req.Attacks = []string{*attack}
		}
		cl := client.New(*remote)
		cl.Log = log
		res, _, cachePath, err := cl.Run(ctx, req)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "whisper: served by %s (cache: %s, hash %.12s…)\n", *remote, cachePath, res.Hash)
		fmt.Print(res.Rendered)
		return
	}

	if *all {
		ctx, stop := cli.SignalContext(context.Background())
		defer stop()
		var reg *obs.Registry
		if *traceOut != "" || *metricsOut != "" {
			reg = obs.NewRegistry()
		}
		fmt.Printf("machine: %s (%s), all attack families, seed %d\n", model.Name, model.Microarch, *seed)
		ex := experiments.Exec{Ctx: ctx, Parallel: *parallel, Obs: reg}
		out, err := experiments.AttackSuite(ex, model, cfg, []byte(*secret), *seed, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		if *traceOut != "" {
			if err := reg.WriteTraceFile(*traceOut, nil); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := reg.WriteMetricsFile(*metricsOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
		}
		return
	}

	m, err := cpu.NewMachine(model, *seed)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" || *metricsOut != "" {
		// Observability stays nil (zero-overhead) unless an output was asked
		// for. Enable before Boot so the kernel.boot span lands on the trace.
		m.EnableObs()
	}
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		fatal(err)
	}
	want := []byte(*secret)
	fmt.Printf("machine: %s (%s), KASLR base %#x (hidden from the attack)\n",
		model.Name, model.Microarch, k.KASLRBase())

	report := func(name string, res core.LeakResult) {
		fmt.Printf("%s leaked %q\n", name, res.Data)
		fmt.Printf("  throughput %.1f B/s, byte error rate %.1f%%, %d simulated cycles (%.4fs at %.1f GHz)\n",
			res.Bps, stats.ByteErrorRate(res.Data, want)*100, res.Cycles,
			m.Seconds(res.Cycles), model.ClockHz/1e9)
	}

	switch *attack {
	case "md":
		k.WriteSecret(want)
		a, err := core.NewTETMeltdown(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(k.SecretVA(), len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Meltdown", res)
	case "zbl":
		k.WriteSecret(want)
		a, err := core.NewTETZombieload(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Zombieload", res)
	case "rsb":
		secretVA := uint64(kernel.UserDataBase + 0x500)
		pa, ok := k.UserAS().Translate(secretVA)
		if !ok {
			fatal(fmt.Errorf("secret VA unmapped"))
		}
		m.Phys.StoreBytes(pa, want)
		a, err := core.NewTETRSB(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(secretVA, len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Spectre-RSB", res)
	case "v1":
		v1, err := core.NewTETSpectreV1(k)
		if err != nil {
			fatal(err)
		}
		pa, ok := k.UserAS().Translate(v1.ArrayVA() + v1.ArrayLen())
		if !ok {
			fatal(fmt.Errorf("V1 secret region unmapped"))
		}
		m.Phys.StoreBytes(pa, want)
		res, err := v1.Leak(v1.ArrayLen(), len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Spectre-V1 (extension)", res)
	case "cc":
		a, err := core.NewTETCovertChannel(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Transfer(want)
		if err != nil {
			fatal(err)
		}
		report("TET covert channel", res)
	case "smt":
		a, err := smt.NewChannel(k, smt.ModeReliable)
		if err != nil {
			fatal(err)
		}
		res, err := a.Transfer(want[:min(len(want), 4)])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("SMT covert channel received %q (%.2f B/s, bit error %.1f%%)\n",
			res.Data, res.Bps, stats.BitErrorRate(res.Data, want[:len(res.Data)])*100)
	case "kaslr":
		a, err := core.NewTETKASLR(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Locate()
		if err != nil {
			fatal(err)
		}
		verdict := "WRONG"
		if res.Base == k.KASLRBase() {
			verdict = "correct"
		}
		fmt.Printf("TET-KASLR recovered base %#x (slot %d) in %.4f s — %s\n",
			res.Base, res.Slot, res.Seconds, verdict)
	default:
		fmt.Fprintf(os.Stderr, "whisper: unknown attack %q\n", *attack)
		os.Exit(2)
	}

	if *showWin {
		if err := renderWindow(k); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := m.Obs.WriteTraceFile(*traceOut, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := m.Obs.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
}

// renderWindow runs one traced TET probe and prints its pipeline diagram —
// the transient window the attack just timed.
func renderWindow(k *kernel.Kernel) error {
	m := k.Machine()
	pr, err := core.NewProber(m, core.SuppressTSX, true)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ { // steady state
		if _, err := pr.Probe(core.UnmappedVA, 256, 0); err != nil {
			return err
		}
	}
	c := trace.NewCollector(0)
	c.Attach(m.Pipe)
	defer func() {
		// Hand the pipeline back to the obs registry's collector if one is
		// live (-trace-out), otherwise detach tracing entirely.
		if m.Obs != nil {
			m.Obs.AttachPipeline(m.Pipe)
		} else {
			m.Pipe.SetTracer(nil)
		}
	}()
	tote, err := pr.Probe(core.UnmappedVA, 1, 1) // triggered probe
	if err != nil {
		return err
	}
	fmt.Printf("\none traced probe (Jcc triggered, ToTE = %d cycles):\n", tote)
	fmt.Print(trace.Render(c.Records(), 88))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whisper:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
