// Command whisper runs a single Whisper attack on a chosen CPU model and
// prints what leaked. It is the interactive front door to the library; the
// full evaluation lives in cmd/tetbench.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/smt"
	"whisper/internal/stats"
	"whisper/internal/trace"
)

func modelByName(name string) (cpu.Model, bool) {
	for _, m := range cpu.AllModels() {
		if strings.EqualFold(m.Microarch, name) || strings.EqualFold(m.Name, name) {
			return m, true
		}
	}
	return cpu.Model{}, false
}

func main() {
	var (
		attack  = flag.String("attack", "md", "attack: cc|md|zbl|rsb|v1|kaslr|smt")
		cpuName = flag.String("cpu", "Kaby Lake", "CPU model (microarchitecture or full name)")
		secret  = flag.String("secret", "squeamish ossifrage", "victim secret to plant and leak")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		kpti    = flag.Bool("kpti", false, "enable KPTI")
		flare   = flag.Bool("flare", false, "enable FLARE")
		docker  = flag.Bool("docker", false, "run the attacker inside a container")
		showWin = flag.Bool("trace", false, "after the attack, render one probe's pipeline diagram")

		traceOut   = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the run to this file")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot to this file (.json for JSON)")
	)
	flag.Parse()

	model, ok := modelByName(*cpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "whisper: unknown CPU %q; options:\n", *cpuName)
		for _, m := range cpu.AllModels() {
			fmt.Fprintf(os.Stderr, "  %q (%s)\n", m.Microarch, m.Name)
		}
		os.Exit(2)
	}
	m, err := cpu.NewMachine(model, *seed)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" || *metricsOut != "" {
		// Observability stays nil (zero-overhead) unless an output was asked
		// for. Enable before Boot so the kernel.boot span lands on the trace.
		m.EnableObs()
	}
	k, err := kernel.Boot(m, kernel.Config{KASLR: true, KPTI: *kpti, FLARE: *flare, Docker: *docker})
	if err != nil {
		fatal(err)
	}
	want := []byte(*secret)
	fmt.Printf("machine: %s (%s), KASLR base %#x (hidden from the attack)\n",
		model.Name, model.Microarch, k.KASLRBase())

	report := func(name string, res core.LeakResult) {
		fmt.Printf("%s leaked %q\n", name, res.Data)
		fmt.Printf("  throughput %.1f B/s, byte error rate %.1f%%, %d simulated cycles (%.4fs at %.1f GHz)\n",
			res.Bps, stats.ByteErrorRate(res.Data, want)*100, res.Cycles,
			m.Seconds(res.Cycles), model.ClockHz/1e9)
	}

	switch *attack {
	case "md":
		k.WriteSecret(want)
		a, err := core.NewTETMeltdown(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(k.SecretVA(), len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Meltdown", res)
	case "zbl":
		k.WriteSecret(want)
		a, err := core.NewTETZombieload(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Zombieload", res)
	case "rsb":
		secretVA := uint64(kernel.UserDataBase + 0x500)
		pa, ok := k.UserAS().Translate(secretVA)
		if !ok {
			fatal(fmt.Errorf("secret VA unmapped"))
		}
		m.Phys.StoreBytes(pa, want)
		a, err := core.NewTETRSB(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(secretVA, len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Spectre-RSB", res)
	case "v1":
		v1, err := core.NewTETSpectreV1(k)
		if err != nil {
			fatal(err)
		}
		pa, ok := k.UserAS().Translate(v1.ArrayVA() + v1.ArrayLen())
		if !ok {
			fatal(fmt.Errorf("V1 secret region unmapped"))
		}
		m.Phys.StoreBytes(pa, want)
		res, err := v1.Leak(v1.ArrayLen(), len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Spectre-V1 (extension)", res)
	case "cc":
		a, err := core.NewTETCovertChannel(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Transfer(want)
		if err != nil {
			fatal(err)
		}
		report("TET covert channel", res)
	case "smt":
		a, err := smt.NewChannel(k, smt.ModeReliable)
		if err != nil {
			fatal(err)
		}
		res, err := a.Transfer(want[:min(len(want), 4)])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("SMT covert channel received %q (%.2f B/s, bit error %.1f%%)\n",
			res.Data, res.Bps, stats.BitErrorRate(res.Data, want[:len(res.Data)])*100)
	case "kaslr":
		a, err := core.NewTETKASLR(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Locate()
		if err != nil {
			fatal(err)
		}
		verdict := "WRONG"
		if res.Base == k.KASLRBase() {
			verdict = "correct"
		}
		fmt.Printf("TET-KASLR recovered base %#x (slot %d) in %.4f s — %s\n",
			res.Base, res.Slot, res.Seconds, verdict)
	default:
		fmt.Fprintf(os.Stderr, "whisper: unknown attack %q\n", *attack)
		os.Exit(2)
	}

	if *showWin {
		if err := renderWindow(k); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := m.Obs.WriteTraceFile(*traceOut, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := m.Obs.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
}

// renderWindow runs one traced TET probe and prints its pipeline diagram —
// the transient window the attack just timed.
func renderWindow(k *kernel.Kernel) error {
	m := k.Machine()
	pr, err := core.NewProber(m, core.SuppressTSX, true)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ { // steady state
		if _, err := pr.Probe(core.UnmappedVA, 256, 0); err != nil {
			return err
		}
	}
	c := trace.NewCollector(0)
	c.Attach(m.Pipe)
	defer func() {
		// Hand the pipeline back to the obs registry's collector if one is
		// live (-trace-out), otherwise detach tracing entirely.
		if m.Obs != nil {
			m.Obs.AttachPipeline(m.Pipe)
		} else {
			m.Pipe.SetTracer(nil)
		}
	}()
	tote, err := pr.Probe(core.UnmappedVA, 1, 1) // triggered probe
	if err != nil {
		return err
	}
	fmt.Printf("\none traced probe (Jcc triggered, ToTE = %d cycles):\n", tote)
	fmt.Print(trace.Render(c.Records(), 88))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whisper:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
