// Command pmutool is the paper's Figure 2 analysis toolset: it prepares the
// vendor event list, collects counters online around paired scenarios, and
// applies the offline differential filter that surfaces the Table 3 events.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"whisper/internal/experiments"
	"whisper/internal/obs"
	"whisper/internal/pmu"
)

func main() {
	var (
		table3   = flag.Bool("table3", false, "regenerate Table 3 (all scenes)")
		flow     = flag.Bool("flow", false, "describe and demonstrate the 3-stage analysis flow")
		events   = flag.Bool("events", false, "stage 1 only: list the harvested event records")
		vendor   = flag.String("vendor", "intel", "event vendor for -events: intel|amd")
		seed     = flag.Int64("seed", experiments.DefaultSeed, "deterministic seed")
		topN     = flag.Int("top", 12, "significant events to show per scene")
		parallel = flag.Int("parallel", 0, "sched workers for the scene sweep (<=0: GOMAXPROCS)")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of text")

		traceOut   = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the run to this file")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot to this file (.json JSON, .prom Prometheus, else text)")
	)
	flag.Parse()
	if !*table3 && !*flow && !*events {
		*flow = true
	}

	var reg *obs.Registry
	if *traceOut != "" || *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pmutool:", err)
		os.Exit(1)
	}

	if *events {
		v := pmu.Intel
		if *vendor == "amd" {
			v = pmu.AMD
		}
		if *asJSON {
			descs := []pmu.Desc{}
			for _, e := range pmu.EventsForVendor(v) {
				descs = append(descs, e.Desc())
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", " ")
			if err := enc.Encode(descs); err != nil {
				fail(err)
			}
			return
		}
		fmt.Printf("stage 1 (preparation): %s PMU event records\n", *vendor)
		for _, e := range pmu.EventsForVendor(v) {
			d := e.Desc()
			fmt.Printf("  %-50s %-12s %s\n", d.Name, d.Domain, d.Help)
		}
		return
	}

	sp := reg.StartWallSpan("pmutool.table3")
	scenes, err := experiments.Table3(experiments.Exec{Parallel: *parallel, Obs: reg}, *seed)
	sp.End(0)
	if err != nil {
		fail(err)
	}
	for _, s := range scenes {
		reg.Counter("pmutool.scenes").Inc()
		for _, d := range s.Diffs {
			reg.Gauge("pmu.t", obs.L("scene", s.Name), obs.L("event", d.Event.String())).Set(d.T)
		}
	}

	if *asJSON {
		// Re-encode each scene's differential result through the obs metrics
		// snapshot: per (scene, event) gauges for both scenario means and the
		// Welch t statistic, serialised by the shared encoder.
		r := obs.NewRegistry()
		for _, s := range scenes {
			for _, d := range s.Diffs {
				ls := []obs.Label{
					obs.L("cpu", s.CPU),
					obs.L("scene", s.Name),
					obs.L("event", d.Event.String()),
				}
				r.Gauge("pmu.meanA", ls...).Set(d.MeanA)
				r.Gauge("pmu.meanB", ls...).Set(d.MeanB)
				r.Gauge("pmu.welch_t", ls...).Set(d.T)
			}
		}
		if err := r.Snapshot().WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	} else {
		if *flow {
			fmt.Println("PMU analysis flow (paper Fig. 2):")
			fmt.Println("  stage 1  preparation: harvest the vendor's event records (-events)")
			fmt.Println("  stage 2  online collection: run each scenario pair, snapshot all counters per run")
			fmt.Println("  stage 3  offline analysis: differential filter (Welch t) surfaces the relevant events")
			fmt.Println()
			for _, s := range scenes {
				diffs := s.Diffs
				if len(diffs) > *topN {
					diffs = diffs[:*topN]
				}
				fmt.Println(pmu.Report(
					fmt.Sprintf("%s — %s (top %d significant events)", s.CPU, s.Name, len(diffs)),
					s.LabelA, s.LabelB, diffs))
			}
		}
		if *table3 {
			fmt.Println(experiments.RenderTable3(scenes))
		}
	}

	if *traceOut != "" {
		if err := reg.WriteTraceFile(*traceOut, nil); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := reg.WriteMetricsFile(*metricsOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
	}
}
