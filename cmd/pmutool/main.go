// Command pmutool is the paper's Figure 2 analysis toolset: it prepares the
// vendor event list, collects counters online around paired scenarios, and
// applies the offline differential filter that surfaces the Table 3 events.
package main

import (
	"flag"
	"fmt"
	"os"

	"whisper/internal/experiments"
	"whisper/internal/pmu"
)

func main() {
	var (
		table3 = flag.Bool("table3", false, "regenerate Table 3 (all scenes)")
		flow   = flag.Bool("flow", false, "describe and demonstrate the 3-stage analysis flow")
		events = flag.Bool("events", false, "stage 1 only: list the harvested event records")
		vendor = flag.String("vendor", "intel", "event vendor for -events: intel|amd")
		seed   = flag.Int64("seed", experiments.DefaultSeed, "deterministic seed")
		topN   = flag.Int("top", 12, "significant events to show per scene")
	)
	flag.Parse()
	if !*table3 && !*flow && !*events {
		*flow = true
	}

	if *events {
		v := pmu.Intel
		if *vendor == "amd" {
			v = pmu.AMD
		}
		fmt.Printf("stage 1 (preparation): %s PMU event records\n", *vendor)
		for _, e := range pmu.EventsForVendor(v) {
			d := e.Desc()
			fmt.Printf("  %-50s %-12s %s\n", d.Name, d.Domain, d.Help)
		}
		return
	}

	scenes, err := experiments.Table3(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmutool:", err)
		os.Exit(1)
	}

	if *flow {
		fmt.Println("PMU analysis flow (paper Fig. 2):")
		fmt.Println("  stage 1  preparation: harvest the vendor's event records (-events)")
		fmt.Println("  stage 2  online collection: run each scenario pair, snapshot all counters per run")
		fmt.Println("  stage 3  offline analysis: differential filter (Welch t) surfaces the relevant events")
		fmt.Println()
		for _, s := range scenes {
			diffs := s.Diffs
			if len(diffs) > *topN {
				diffs = diffs[:*topN]
			}
			fmt.Println(pmu.Report(
				fmt.Sprintf("%s — %s (top %d significant events)", s.CPU, s.Name, len(diffs)),
				s.LabelA, s.LabelB, diffs))
		}
	}
	if *table3 {
		fmt.Println(experiments.RenderTable3(scenes))
	}
}
