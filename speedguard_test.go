package whisper_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"whisper/internal/experiments"
)

// benchRecord is the BENCH_ci.json schema the CI bench-regression job
// archives per commit.
type benchRecord struct {
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// TestParallelSpeedupGuard is the CI bench-regression gate: a full RunAll on
// four sched workers must beat the serial run. The threshold is deliberately
// generous (1.05x, vs the ~2x a 4-core runner actually delivers) so the gate
// only trips when the scheduler genuinely stops parallelising — not on
// runner jitter. Enabled by CI_BENCH_GUARD=1; always writes BENCH_ci.json
// for the artifact upload when enabled.
func TestParallelSpeedupGuard(t *testing.T) {
	if os.Getenv("CI_BENCH_GUARD") == "" {
		t.Skip("set CI_BENCH_GUARD=1 to run the speedup gate")
	}
	const workers = 4
	params := func(parallel int) experiments.ReportParams {
		p := experiments.DefaultReportParams()
		p.ThroughputBytes = 4
		p.KASLRReps = 3
		p.Fig1bBatches = 3
		p.Parallel = parallel
		return p
	}
	run := func(parallel int) time.Duration {
		// Warm-up run eats one-time costs, then take the best of 3 to shed
		// scheduler/GC noise on shared runners.
		if _, err := experiments.RunAll(params(parallel)); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := experiments.RunAll(params(parallel)); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := run(1)
	parallel := run(workers)
	speedup := float64(serial) / float64(parallel)

	rec := benchRecord{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
		SerialNs:   serial.Nanoseconds(),
		ParallelNs: parallel.Nanoseconds(),
		Speedup:    speedup,
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ci.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %v, parallel(%d) %v, speedup %.2fx", serial, workers, parallel, speedup)

	if runtime.NumCPU() < 2 {
		t.Skip("single-core runner: speedup not expected")
	}
	if speedup < 1.05 {
		t.Fatalf("parallel RunAll no faster than serial: %.2fx (serial %v, parallel %v) — scheduler regression",
			speedup, serial, parallel)
	}
}
