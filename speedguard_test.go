package whisper_test

import (
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"runtime"
	"testing"
	"time"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/experiments"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/pipeline"
	"whisper/internal/snapshot"
)

// benchRecord is the BENCH_ci.json schema the CI bench-regression job
// archives per commit.
type benchRecord struct {
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	Workers    int     `json:"workers"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Gate names the criterion this run was judged by: "speedup" on
	// multi-core runners, "serial-wallclock" on single-core ones.
	Gate string `json:"gate"`
	// SerialBudgetNs is the serial wall-clock ceiling the single-core gate
	// enforces (also recorded on multi-core runs for trend plots).
	SerialBudgetNs int64 `json:"serial_budget_ns"`
}

// serialBudget is the single-core gate: the reduced RunAll workload must
// finish a serial pass within this wall-clock budget. The seed-era simulator
// took ~3.1 s on a 1-vCPU container; after the hot-path overhaul the same
// workload runs in well under half that, so the budget only trips when the
// simulator's single-thread cost regresses by several times — not on runner
// jitter.
const serialBudget = 12 * time.Second

// TestParallelSpeedupGuard is the CI bench-regression gate: a full RunAll on
// four sched workers must beat the serial run. The threshold is deliberately
// generous (1.05x, vs the ~2x a 4-core runner actually delivers) so the gate
// only trips when the scheduler genuinely stops parallelising — not on
// runner jitter. Enabled by CI_BENCH_GUARD=1; always writes BENCH_ci.json
// for the artifact upload when enabled.
// TestProbeSteadyStateZeroAlloc pins the hot-path overhaul's allocation
// contract: once the uop freelist, the ring buffers, the decoded-program
// cache, and the DSB are warm, a full transient probe — fetch, speculate,
// fault, squash, time — allocates nothing. Any append-grown queue or per-uop
// heap object reintroduced into the inner loop trips this immediately.
func TestProbeSteadyStateZeroAlloc(t *testing.T) {
	m, err := cpu.NewMachine(cpu.I7_7700(), 13)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(m, kernel.Config{KASLR: true})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ { // warm rings, freelist, decode cache, DSB
		if _, err := pr.Probe(core.UnmappedVA, uint64(i%256), 0); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		if _, err := pr.Probe(core.UnmappedVA, uint64(i%256), 0); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state probe allocates %.2f objects/op, want 0", avg)
	}
}

// TestInvariantCheckerFreeWhenDetached pins the debug-hook contract behind
// the fuzzing subsystem: the pipeline.InvariantChecker hook is nil-guarded on
// the hot path, so production runs (nil checker — every CLI and server path)
// keep the steady-state zero-alloc property above, and an attached checker is
// a pure observer — the simulated cycle count of a probe campaign is
// bit-identical with and without it.
func TestInvariantCheckerFreeWhenDetached(t *testing.T) {
	campaign := func(inv *pipeline.InvariantChecker) uint64 {
		m, err := cpu.NewMachine(cpu.I7_7700(), 13)
		if err != nil {
			t.Fatal(err)
		}
		if inv != nil {
			m.Pipe.SetInvariantChecker(inv)
		}
		k, err := kernel.Boot(m, kernel.Config{KASLR: true})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 128; i++ {
			if _, err := pr.Probe(core.UnmappedVA, uint64(i%256), 0); err != nil {
				t.Fatal(err)
			}
		}
		return m.Pipe.Cycle()
	}

	bare := campaign(nil)
	inv := pipeline.NewInvariantChecker()
	audited := campaign(inv)
	if bare != audited {
		t.Fatalf("invariant checker perturbs simulation: %d cycles audited, %d bare", audited, bare)
	}
	if err := inv.Err(); err != nil {
		t.Fatalf("probe campaign violates pipeline invariants: %v", err)
	}
	if inv.Checks() == 0 {
		t.Fatal("checker attached but never ran")
	}
}

// TestServeLogDisabledZeroAlloc pins the structured-logging contract on the
// hot serve path: with no logger on the context (logging disabled — the
// default for every direct CLI run), the guarded-log idiom used across
// internal/server, internal/experiments and internal/sched
//
//	if log := logging.From(ctx); log.Enabled(ctx, slog.LevelDebug) { ... }
//
// allocates nothing, and neither does reading the request ID. A With/Attr
// chain or fmt.Sprintf smuggled ahead of the Enabled check trips this.
func TestServeLogDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	avg := testing.AllocsPerRun(1000, func() {
		if log := logging.From(ctx); log.Enabled(ctx, slog.LevelDebug) {
			log.LogAttrs(ctx, slog.LevelDebug, "unreachable")
		}
		if id := obs.RequestIDFrom(ctx); id != "" {
			t.Fatal("bare context carries an ID")
		}
	})
	if avg != 0 {
		t.Fatalf("disabled serve-path logging allocates %.2f objects/op, want 0", avg)
	}
}

// TestSnapshotForkZeroAlloc pins the snapshot subsystem's allocation
// contract: forking a captured warm-boot checkpoint into a pooled machine
// allocates nothing once the pool is warm. The fork path is AliasBase (O(1)
// copy-on-write physical aliasing) plus LoadImage (O(valid lines) cache
// replay) into the target's existing backing storage; any per-fork map,
// slice, or page allocation reintroduced there trips this immediately.
// Machine-level Fork is asserted — ForkKernel legitimately allocates the
// one Kernel view struct on top.
func TestSnapshotForkZeroAlloc(t *testing.T) {
	m, err := cpu.NewMachine(cpu.I7_7700(), 16)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(m, kernel.Config{KASLR: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.CaptureKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	pool := cpu.NewPool()
	for i := 0; i < 8; i++ { // warm the pool and the target's page freelist
		mc, err := snap.Fork(pool)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(mc)
	}
	avg := testing.AllocsPerRun(200, func() {
		mc, err := snap.Fork(pool)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(mc)
	})
	if avg != 0 {
		t.Fatalf("steady-state snapshot fork allocates %.2f objects/op, want 0", avg)
	}
}

// TestSnapshotForkBeatsReboot is the wall-clock gate behind the snapshot
// tentpole: restoring a warm-boot checkpoint into a pooled machine must be
// faster than re-booting the kernel on that machine — otherwise the sweep
// driver's fork-per-cell strategy is a pure loss and WHISPER_SNAPSHOTS should
// default off. The margin is generous (fork must merely win; measured ~4x
// faster) so the gate trips on a real regression — a fork path that quietly
// re-copies the full physical image or rescans full cache metadata — not on
// runner jitter.
func TestSnapshotForkBeatsReboot(t *testing.T) {
	cfg := kernel.Config{KASLR: true}
	m, err := cpu.NewMachine(cpu.I7_7700(), 16)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.CaptureKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	pool := cpu.NewPool()

	const iters = 200
	forkLoop := func() time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fk, err := snap.ForkKernel(pool)
			if err != nil {
				t.Fatal(err)
			}
			pool.Put(fk.Machine())
		}
		return time.Since(start)
	}
	rm, err := cpu.NewMachine(cpu.I7_7700(), 16)
	if err != nil {
		t.Fatal(err)
	}
	rebootLoop := func() time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := kernel.Reboot(rm, cfg, 16); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	// Warm both paths, then take the best of 3 to shed scheduler/GC noise.
	forkLoop()
	rebootLoop()
	fork, reboot := forkLoop(), rebootLoop()
	for i := 0; i < 2; i++ {
		if d := forkLoop(); d < fork {
			fork = d
		}
		if d := rebootLoop(); d < reboot {
			reboot = d
		}
	}
	t.Logf("fork %v, reboot %v for %d cells (%.1fx)", fork, reboot, iters,
		float64(reboot)/float64(fork))
	if fork >= reboot {
		t.Fatalf("snapshot fork slower than reboot: %v vs %v per %d cells — fork path regression",
			fork, reboot, iters)
	}
}

func TestParallelSpeedupGuard(t *testing.T) {
	if os.Getenv("CI_BENCH_GUARD") == "" {
		t.Skip("set CI_BENCH_GUARD=1 to run the speedup gate")
	}
	const workers = 4
	params := func(parallel int) experiments.ReportParams {
		p := experiments.DefaultReportParams()
		p.ThroughputBytes = 4
		p.KASLRReps = 3
		p.Fig1bBatches = 3
		p.Parallel = parallel
		return p
	}
	run := func(parallel int) time.Duration {
		// Warm-up run eats one-time costs, then take the best of 3 to shed
		// scheduler/GC noise on shared runners.
		if _, err := experiments.RunAll(params(parallel)); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := experiments.RunAll(params(parallel)); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := run(1)
	parallel := run(workers)
	speedup := float64(serial) / float64(parallel)

	gate := "speedup"
	if runtime.NumCPU() < 2 {
		gate = "serial-wallclock"
	}
	rec := benchRecord{
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Workers:        workers,
		SerialNs:       serial.Nanoseconds(),
		ParallelNs:     parallel.Nanoseconds(),
		Speedup:        speedup,
		Gate:           gate,
		SerialBudgetNs: serialBudget.Nanoseconds(),
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ci.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %v, parallel(%d) %v, speedup %.2fx, gate %s", serial, workers, parallel, speedup, gate)

	if runtime.NumCPU() < 2 {
		// A single hardware thread cannot show a speedup, but it can still
		// catch the simulator getting slower: gate on the serial wall-clock
		// instead of the parallel/serial ratio.
		if serial > serialBudget {
			t.Fatalf("serial RunAll took %v, budget %v — single-thread simulator regression", serial, serialBudget)
		}
		return
	}
	if speedup < 1.05 {
		t.Fatalf("parallel RunAll no faster than serial: %.2fx (serial %v, parallel %v) — scheduler regression",
			speedup, serial, parallel)
	}
}
